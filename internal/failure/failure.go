// Package failure provides the fault models the paper's reliability
// analysis assumes (§3.2): crash-stop contents peers, performance
// degradation, and — because the parity scheme explicitly targets packets
// "lost with (H−h) channels in a bursty manner" — a Gilbert–Elliott
// two-state bursty loss channel usable as simnet's BurstLoss hook.
package failure

import (
	"fmt"
	"math/rand"

	"p2pmss/internal/simnet"
)

// GilbertElliott is the classic two-state Markov loss model: a Good state
// with low loss and a Bad (burst) state with high loss. Transition
// probabilities are evaluated per message.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are the per-message transition
	// probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-message loss probabilities in
	// each state.
	LossGood, LossBad float64

	rng *rand.Rand
	bad bool

	// Counters for inspection.
	Messages, Dropped, BadVisits int64
}

// NewGilbertElliott builds the model with its own deterministic source.
func NewGilbertElliott(pGB, pBG, lossGood, lossBad float64, seed int64) *GilbertElliott {
	for _, p := range []float64{pGB, pBG, lossGood, lossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("failure: probability %v outside [0,1]", p))
		}
	}
	return &GilbertElliott{
		PGoodToBad: pGB, PBadToGood: pBG,
		LossGood: lossGood, LossBad: lossBad,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Step advances the state machine one message and reports whether that
// message is lost.
func (g *GilbertElliott) Step() bool {
	g.Messages++
	if g.bad {
		if g.rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.PGoodToBad {
		g.bad = true
		g.BadVisits++
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	if g.rng.Float64() < p {
		g.Dropped++
		return true
	}
	return false
}

// InBurst reports whether the channel is currently in the bad state.
func (g *GilbertElliott) InBurst() bool { return g.bad }

// LossRate returns the observed loss fraction so far.
func (g *GilbertElliott) LossRate() float64 {
	if g.Messages == 0 {
		return 0
	}
	return float64(g.Dropped) / float64(g.Messages)
}

// ChannelSet gives each directed (from, to) pair its own Gilbert–Elliott
// channel, for use as a simnet BurstLoss hook: bursts on one channel do
// not correlate with others, matching §3.2's "packets are lost with
// (H−h) channels in a bursty manner".
type ChannelSet struct {
	pGB, pBG, lossGood, lossBad float64
	seed                        int64
	chans                       map[[2]simnet.NodeID]*GilbertElliott
}

// NewChannelSet builds a per-channel burst-loss set.
func NewChannelSet(pGB, pBG, lossGood, lossBad float64, seed int64) *ChannelSet {
	return &ChannelSet{
		pGB: pGB, pBG: pBG, lossGood: lossGood, lossBad: lossBad,
		seed:  seed,
		chans: make(map[[2]simnet.NodeID]*GilbertElliott),
	}
}

// Hook is the simnet.Network.BurstLoss callback.
func (cs *ChannelSet) Hook(from, to simnet.NodeID) bool {
	key := [2]simnet.NodeID{from, to}
	g, ok := cs.chans[key]
	if !ok {
		g = NewGilbertElliott(cs.pGB, cs.pBG, cs.lossGood, cs.lossBad,
			cs.seed+int64(from)*100003+int64(to))
		cs.chans[key] = g
	}
	return g.Step()
}

// Channel returns the model for a directed pair (creating it if needed).
func (cs *ChannelSet) Channel(from, to simnet.NodeID) *GilbertElliott {
	cs.Hook(from, to) // ensure it exists; one extra step is negligible
	return cs.chans[[2]simnet.NodeID{from, to}]
}

// CrashPlan schedules crash-stop failures over time: peer i crashes at
// Times[i] (entries may repeat peers harmlessly).
type CrashPlan struct {
	// Peers[i] crashes at Times[i].
	Peers []simnet.NodeID
	Times []float64
}

// Validate checks the plan's shape.
func (p CrashPlan) Validate() error {
	if len(p.Peers) != len(p.Times) {
		return fmt.Errorf("failure: %d peers but %d times", len(p.Peers), len(p.Times))
	}
	for i, t := range p.Times {
		if t < 0 {
			return fmt.Errorf("failure: negative crash time %v for peer %v", t, p.Peers[i])
		}
	}
	return nil
}

// Install schedules the crashes on the network's engine.
func (p CrashPlan) Install(nw *simnet.Network) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, id := range p.Peers {
		id := id
		nw.Engine().At(p.Times[i], func() { nw.Crash(id) })
	}
	return nil
}

// ChurnEvent is one membership change in a churn schedule: peer Peer
// crashes (Join=false) or recovers/joins (Join=true) at time At.
type ChurnEvent struct {
	At   float64
	Peer simnet.NodeID
	Join bool
}

// ChurnSchedule is a deterministic sequence of crash and join events —
// the sim-side counterpart of the live layer's churn injection, so the
// coordination protocols can be measured under the same membership
// dynamics the live tests exercise.
type ChurnSchedule struct {
	Events []ChurnEvent
}

// Validate checks the schedule's shape.
func (s ChurnSchedule) Validate() error {
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("failure: negative churn time %v at event %d", e.At, i)
		}
	}
	return nil
}

// Install schedules the events on the network's engine: crashes call
// nw.Crash, joins call nw.Recover. The optional observe callback fires
// as each event executes (for tracing).
func (s ChurnSchedule) Install(nw *simnet.Network, observe func(ChurnEvent)) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, e := range s.Events {
		e := e
		nw.Engine().At(e.At, func() {
			if e.Join {
				nw.Recover(e.Peer)
			} else {
				nw.Crash(e.Peer)
			}
			if observe != nil {
				observe(e)
			}
		})
	}
	return nil
}

// PeriodicChurn builds a schedule that crashes peers [first, first+count)
// one every period starting at start, each rejoining downAfter later
// (downAfter <= 0 means crashed peers stay down).
func PeriodicChurn(first simnet.NodeID, count int, start, period, downAfter float64) ChurnSchedule {
	var s ChurnSchedule
	for i := 0; i < count; i++ {
		at := start + float64(i)*period
		id := first + simnet.NodeID(i)
		s.Events = append(s.Events, ChurnEvent{At: at, Peer: id})
		if downAfter > 0 {
			s.Events = append(s.Events, ChurnEvent{At: at + downAfter, Peer: id, Join: true})
		}
	}
	return s
}

// Degradation models a peer whose effective transmission rate decays by
// Factor at time At — the paper's "degraded in performance" failure. The
// coordination layer consults Multiplier when scheduling sends.
type Degradation struct {
	At     float64
	Factor float64 // new rate = old rate × Factor (0 < Factor ≤ 1)
}

// Multiplier returns the rate multiplier in effect at time now.
func (d Degradation) Multiplier(now float64) float64 {
	if now >= d.At && d.Factor > 0 {
		return d.Factor
	}
	return 1
}
