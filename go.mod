module p2pmss

go 1.22
