package p2pmss

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSimulatePublicAPI(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 30
	cfg.H = 10
	for _, proto := range Protocols {
		res, err := Simulate(proto, cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Protocol != proto {
			t.Errorf("protocol = %q", res.Protocol)
		}
		if res.ActivePeers == 0 {
			t.Errorf("%s: no peers activated", proto)
		}
	}
}

func TestExperimentPublicAPI(t *testing.T) {
	o := DefaultExperimentOptions()
	o.N = 20
	o.Hs = []int{5, 20}
	o.Seeds = 1
	s, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintSeries(&b, "fig10", s)
	if !strings.Contains(b.String(), "fig10") {
		t.Error("PrintSeries output missing title")
	}
	if !strings.Contains(SeriesCSV(s), "dcop") {
		t.Error("CSV missing protocol")
	}
	rows, err := Baselines(ExperimentOptions{N: 10, Hs: []int{4}, Seeds: 1, Rate: 2, ContentLen: 2000, Window: 40}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var bb strings.Builder
	PrintBaselines(&bb, "base", rows)
	if !strings.Contains(bb.String(), "unicast") {
		t.Error("baseline table missing unicast")
	}
}

func TestAllocatePublicAPI(t *testing.T) {
	al := Allocate(7, ProportionalChannels(4, 2, 1))
	if len(al.PerChannel[0]) != 4 {
		t.Errorf("fast channel got %v", al.PerChannel[0])
	}
	a := NewAllocator(ProportionalChannels(1, 1))
	a.Next()
	a.SetSlotLen(0, 2)
	a.Next()
	if a.Allocated() != 2 {
		t.Error("allocator miscounts")
	}
}

func TestContentAndAssemblerPublicAPI(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	c := NewContent("q", data, 8)
	a := NewAssembler(len(data), 8)
	for k := int64(1); k <= c.NumPackets(); k++ {
		a.Add(c.Packet(k))
	}
	got, ok := a.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("assembler round trip failed")
	}
}

// End-to-end public-API live session over the in-memory fabric.
func TestLiveSessionPublicAPI(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(data)
	c := NewContent("api", data, 64)
	f := NewFabric()
	roster := []string{"p0", "p1", "p2", "p3", "p4"}
	var peers []*LivePeer
	for i, name := range roster {
		p, err := StartLivePeer(LivePeerConfig{
			Content:  c,
			Roster:   roster,
			H:        3,
			Interval: 2,
			Delta:    5 * time.Millisecond,
			Seed:     int64(i) + 1,
		}, WithFabric(f, name))
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	leaf, err := StartLiveLeaf(LiveLeafConfig{
		Roster:      roster,
		H:           3,
		Interval:    2,
		Rate:        500,
		ContentSize: len(data),
		PacketSize:  64,
		RepairAfter: 300 * time.Millisecond,
		Seed:        9,
	}, WithFabric(f, "leaf"))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()
	if err := leaf.Start(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := leaf.Bytes()
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("live session content mismatch")
	}
}
