// Package p2pmss is a reproduction of "Distributed Coordination Protocols
// to Realize Scalable Multimedia Streaming in Peer-to-Peer Overlay
// Networks" (Itaya, Hayashibara, Enokido, Takizawa — ICPP 2006).
//
// The paper's multi-source streaming (MSS) model has a set of contents
// peers CP_1..CP_n jointly stream one content to a leaf peer: each sends
// a disjoint division of the parity-enhanced packet sequence, and two
// flooding-based coordination protocols — the redundant DCoP and the
// tree-based TCoP — activate the peers without a central controller.
//
// The package exposes three layers:
//
//   - Simulation: Simulate runs any of the five coordination protocols
//     (DCoP, TCoP, and the broadcast / unicast / centralized baselines of
//     §3.1) on a deterministic discrete-event simulator and reports
//     rounds, control packets, synchronization time and leaf receipt
//     rate.
//
//   - Experiments: Figure10, Figure11, Figure12 and Baselines regenerate
//     the paper's evaluation (§4) as printable tables and CSV.
//
//   - Live streaming: NewContent, NewPeer and NewLeaf run the same
//     protocols on goroutines over an in-memory fabric or TCP loopback,
//     streaming real bytes with parity recovery and repair.
//
// A quickstart:
//
//	cfg := p2pmss.DefaultSimConfig()
//	cfg.H = 60
//	res, err := p2pmss.Simulate(p2pmss.DCoP, cfg)
//	// res.Rounds, res.ControlPackets, ...
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the per-experiment index.
package p2pmss

import (
	"io"
	"net/http"

	"p2pmss/internal/content"
	"p2pmss/internal/coord"
	"p2pmss/internal/disco"
	"p2pmss/internal/experiment"
	"p2pmss/internal/flight"
	"p2pmss/internal/live"
	"p2pmss/internal/metrics"
	"p2pmss/internal/obs"
	"p2pmss/internal/overlay"
	"p2pmss/internal/protocol"
	"p2pmss/internal/schedule"
	"p2pmss/internal/span"
	"p2pmss/internal/trace"
	"p2pmss/internal/transport"
)

// Protocol identifies a coordination protocol by name. One shared set of
// values is accepted by every layer: Simulate (all six) and the live
// runtime (DCoP, TCoP).
type Protocol = protocol.Protocol

// Coordination protocol names accepted by Simulate; DCoP and TCoP are
// also the live runtime's protocols.
const (
	// DCoP is the paper's redundant distributed coordination protocol
	// (§3.4): flooding where a peer may be selected by multiple parents.
	DCoP = coord.DCoP
	// TCoP is the non-redundant tree-based coordination protocol (§3.5):
	// a three-round handshake gives every peer at most one parent.
	TCoP = coord.TCoP
	// Broadcast is the §3.1 baseline where the leaf contacts all n peers
	// and peers exchange state in a group communication.
	Broadcast = coord.Broadcast
	// Unicast is the §3.1 chain baseline: one peer informs the next.
	Unicast = coord.Unicast
	// Centralized is the 2PC-style controller protocol of reference [5].
	Centralized = coord.Centralized
	// AMS is the asynchronous multi-source streaming precursor of the
	// paper's references [3–5]: asynchronous start plus periodic
	// all-to-all state exchange over causal group communication.
	AMS = coord.AMS
)

// Protocols lists every implemented coordination protocol.
var Protocols = coord.Protocols

// SimConfig parameterizes a simulated coordination/streaming run. See
// the field documentation for the paper mapping (n, H, h, τ, δ, ρ_s).
type SimConfig = coord.Config

// SimResult carries the metrics of a simulated run.
type SimResult = coord.Result

// PeerID identifies a contents peer in a simulation (0..N-1).
type PeerID = overlay.PeerID

// BurstParams parameterizes the Gilbert–Elliott bursty loss model on
// every simulated channel (§3.2's bursty loss).
type BurstParams = coord.BurstParams

// DataPlaneMode selects how a simulated run's data plane is executed:
// one DES event per packet (PlanePacket, the default) or closed-form
// per-flow rate arithmetic (PlaneFluid), which makes sweeps up to
// n = 10⁵ peers tractable. See SimConfig.PlaneMode and DESIGN.md §11.
type DataPlaneMode = coord.DataPlaneMode

// Data-plane modes accepted by SimConfig.PlaneMode and
// ExperimentOptions.PlaneMode.
const (
	PlanePacket = coord.PlanePacket
	PlaneFluid  = coord.PlaneFluid
)

// Tracer records simulation events (activations, control packets,
// hand-offs, crashes) for timeline analysis; see cmd/msstrace.
type Tracer = trace.Tracer

// TraceEvent is one recorded trace occurrence.
type TraceEvent = trace.Event

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WriteTraceJSONL writes trace events to w as JSON Lines, one compact
// object per event, in the given order.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return trace.WriteJSONL(w, events)
}

// ---- observability --------------------------------------------------------

// Observability bundles every optional observer a run can attach —
// metrics registry, event tracer (sim only), span collector + trace ID,
// and flight recorder set — in one struct accepted by both the
// simulation (SimConfig.Obs) and the live runtime (LivePeerConfig.Obs,
// LiveClusterConfig.Obs, LiveNodeConfig.Obs, LiveNodesConfig.Obs,
// LiveLeafConfig.Obs). The zero value attaches nothing; the per-config
// Metrics/Trace/Spans/SpanTrace/Flight fields it supersedes remain as
// deprecated aliases.
type Observability = obs.Observability

// ---- metrics --------------------------------------------------------------

// MetricsRegistry is a concurrency-safe registry of named counters,
// gauges and histograms. A nil registry disables all instrumentation at
// near-zero cost, so SimConfig.Metrics / LiveClusterConfig.Metrics can be
// left unset in the common case.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a deterministic point-in-time copy of a registry.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// DebugHandler is an extra endpoint to mount on MetricsDebugMux, e.g.
// a live cluster's /debug/overlay and /debug/flight handlers.
type DebugHandler = metrics.DebugHandler

// MetricsDebugMux returns an http.Handler serving the registry's
// Prometheus text on /metrics plus /healthz, expvar on /debug/vars and
// net/http/pprof on /debug/pprof/. Extra handlers (e.g.
// LiveCluster.DebugHandlers) are mounted after the built-ins.
func MetricsDebugMux(r *MetricsRegistry, extras ...DebugHandler) http.Handler {
	return metrics.DebugMux(r, extras...)
}

// DefaultSimConfig returns the paper's evaluation setting (n = 100
// contents peers, reliable links, δ = 1).
func DefaultSimConfig() SimConfig { return coord.DefaultConfig() }

// Simulate runs the named protocol under cfg on the discrete-event
// simulator and returns its metrics.
func Simulate(proto Protocol, cfg SimConfig) (SimResult, error) {
	return coord.Run(proto, cfg)
}

// ---- experiments ---------------------------------------------------------

// ExperimentOptions parameterizes the figure sweeps.
type ExperimentOptions = experiment.Options

// Series is one protocol's sweep over H.
type Series = experiment.Series

// BaselineRow is one protocol's entry in the baseline comparison table.
type BaselineRow = experiment.BaselineRow

// DefaultExperimentOptions returns the paper-scale sweep (n = 100,
// H ∈ {2..100}, 5 seeds).
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// Figure10 regenerates "Rounds and number of control packets in DCoP".
func Figure10(o ExperimentOptions) (Series, error) { return experiment.Figure10(o) }

// Figure11 regenerates "Rounds and number of control packets in TCoP".
func Figure11(o ExperimentOptions) (Series, error) { return experiment.Figure11(o) }

// Figure12 regenerates "Receipt rate of leaf peer" for DCoP and TCoP.
func Figure12(o ExperimentOptions) (dcop, tcop Series, err error) { return experiment.Figure12(o) }

// Baselines compares all five protocols at fanout H.
func Baselines(o ExperimentOptions, H int) ([]BaselineRow, error) { return experiment.Baselines(o, H) }

// ScalePoint is one overlay size of a scale sweep.
type ScalePoint = experiment.ScalePoint

// ScaleCurve sweeps the overlay size at a fixed fanout with the data
// plane on — combine with ExperimentOptions.PlaneMode = PlaneFluid to
// reach n = 10⁵ peers.
func ScaleCurve(proto Protocol, o ExperimentOptions, H int, ns []int) ([]ScalePoint, error) {
	return experiment.ScaleCurve(proto, o, H, ns)
}

// PrintScaleCurve writes a scale sweep as an aligned table.
func PrintScaleCurve(w io.Writer, title string, pts []ScalePoint) {
	experiment.FprintScaleCurve(w, title, pts)
}

// ScaleCurveCSV renders a scale sweep as CSV.
func ScaleCurveCSV(proto Protocol, pts []ScalePoint) string {
	return experiment.ScaleCurveCSV(proto, pts)
}

// PrintSeries writes a sweep as an aligned table.
func PrintSeries(w io.Writer, title string, s Series) { experiment.FprintSeries(w, title, s) }

// PrintRateSeries writes a Figure 12 pair as an aligned table.
func PrintRateSeries(w io.Writer, title string, dcop, tcop Series) {
	experiment.FprintRateSeries(w, title, dcop, tcop)
}

// PrintBaselines writes the baseline comparison as an aligned table.
func PrintBaselines(w io.Writer, title string, rows []BaselineRow) {
	experiment.FprintBaselines(w, title, rows)
}

// SeriesCSV renders a sweep as CSV.
func SeriesCSV(s Series) string { return experiment.SeriesCSV(s) }

// RunRecord is one (protocol, H, seed) sweep run in machine-readable
// form, including the metrics snapshot when ExperimentOptions.Instrument
// is set.
type RunRecord = experiment.RunRecord

// SweepRecords runs the protocol's (H, seed) grid and returns every
// per-run record in grid order; dataPlane enables the streaming plane
// (as Figure 12 does).
func SweepRecords(proto Protocol, o ExperimentOptions, dataPlane bool) ([]RunRecord, error) {
	return experiment.SweepRecords(proto, o, dataPlane)
}

// BaselineRecords runs every protocol at fixed H and returns the per-run
// records.
func BaselineRecords(o ExperimentOptions, H int) ([]RunRecord, error) {
	return experiment.BaselineRecords(o, H)
}

// WriteRunRecordsJSONL writes run records to w as JSON Lines.
func WriteRunRecordsJSONL(w io.Writer, recs []RunRecord) error {
	return experiment.WriteRecordsJSONL(w, recs)
}

// Spans concatenates the records' causal spans in grid order (set
// ExperimentOptions.CollectSpans to collect them).
func Spans(recs []RunRecord) []Span { return experiment.Spans(recs) }

// SeriesFromRecords aggregates per-run sweep records into the averaged
// series the figure functions return.
func SeriesFromRecords(proto Protocol, o ExperimentOptions, recs []RunRecord) Series {
	return experiment.SeriesFromRecords(proto, o, recs)
}

// BaselinesFromRecords aggregates per-run baseline records into the
// comparison table rows.
func BaselinesFromRecords(o ExperimentOptions, recs []RunRecord) []BaselineRow {
	return experiment.BaselinesFromRecords(o, recs)
}

// GossipCoveragePoint is one fanout's mean dissemination coverage.
type GossipCoveragePoint = experiment.GossipCoveragePoint

// GossipCoverage sweeps gossip fanout vs coverage — the reference-[6]
// phase transition behind DCoP's H ≳ ln n requirement.
func GossipCoverage(n int, fanouts []int, seeds int) ([]GossipCoveragePoint, error) {
	return experiment.GossipCoverage(n, fanouts, seeds)
}

// PrintGossipCoverage writes the coverage sweep as a table.
func PrintGossipCoverage(w io.Writer, n int, pts []GossipCoveragePoint) {
	experiment.FprintGossipCoverage(w, n, pts)
}

// ---- causal span tracing --------------------------------------------------

// Span is one causal coordination span (a handshake round, confirmation
// wave, commit, hand-off, streaming interval, stall, ...) recorded by a
// simulated or live run.
type Span = span.Span

// SpanContext is the (trace, span) pair a message carries so its
// receiver can nest its own spans under the sender's.
type SpanContext = span.Context

// SpanCollector accumulates spans concurrently; a nil collector is the
// disabled state, costing nothing on the engine's hot path.
type SpanCollector = span.Collector

// SpanSummaryRow is one (trace, name) group's latency quantiles.
type SpanSummaryRow = span.SummaryRow

// SpanTraceID identifies one traced session or run; SimConfig.SpanTrace
// takes one.
type SpanTraceID = span.TraceID

// NewSpanCollector returns an empty span collector.
func NewSpanCollector() *SpanCollector { return span.NewCollector() }

// DeriveTrace deterministically derives a non-zero trace id from a
// name, so repeated runs of "fig10/H=10/seed=3" share a trace id and
// distinct names do not collide.
func DeriveTrace(name string) SpanTraceID { return span.DeriveTrace(name) }

// WriteSpansJSONL writes spans to w as JSON Lines, one span per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error { return span.WriteJSONL(w, spans) }

// ReadSpansJSONL reads a JSONL span stream written by WriteSpansJSONL.
func ReadSpansJSONL(r io.Reader) ([]Span, error) { return span.ReadJSONL(r) }

// WriteSpansPerfetto writes spans as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) with one process per trace and one
// track per peer.
func WriteSpansPerfetto(w io.Writer, spans []Span) error { return span.WritePerfetto(w, spans) }

// SummarizeSpans groups spans by (trace, name) and computes duration
// quantiles per group.
func SummarizeSpans(spans []Span) []SpanSummaryRow { return span.Summarize(spans) }

// PrintSpanSummary writes the per-session latency quantile table.
func PrintSpanSummary(w io.Writer, rows []SpanSummaryRow) { span.FprintSummary(w, rows) }

// ---- heterogeneous scheduling (§2) ----------------------------------------

// Channel models a logical channel CC_i with slot length τ_i.
type Channel = schedule.Channel

// Allocation is the result of allocating packets to channels.
type Allocation = schedule.Allocation

// Allocator allocates packets incrementally and supports mid-stream
// bandwidth changes (the paper's §5 heterogeneous extension).
type Allocator = schedule.Allocator

// Allocate assigns packets t_1..t_l to channels with the paper's §2
// algorithm (earliest-finishing initial slot, largest start time).
func Allocate(l int, channels []Channel) Allocation { return schedule.Allocate(l, channels) }

// NewAllocator returns an incremental allocator over the channels.
func NewAllocator(channels []Channel) *Allocator { return schedule.NewAllocator(channels) }

// ProportionalChannels builds channels realizing relative bandwidths
// (e.g. 4:2:1 as in the paper's Figure 1).
func ProportionalChannels(bandwidths ...float64) []Channel {
	return schedule.ProportionalChannels(bandwidths...)
}

// ---- live streaming -------------------------------------------------------

// Content is a multimedia content decomposed into packets (§2).
type Content = content.Content

// NewContent wraps data as a content with the given packet size.
func NewContent(id string, data []byte, packetSize int) *Content {
	return content.New(id, data, packetSize)
}

// Assembler reassembles a content at a leaf from packet arrivals.
type Assembler = content.Assembler

// NewAssembler prepares reassembly of a content of size bytes split into
// packetSize-byte packets.
func NewAssembler(size, packetSize int) *Assembler { return content.NewAssembler(size, packetSize) }

// LivePeer is a contents peer running on goroutines and a real transport.
type LivePeer = live.Peer

// LivePeerConfig configures a live contents peer.
type LivePeerConfig = live.PeerConfig

// LiveLeaf is a leaf peer receiving a live stream.
type LiveLeaf = live.Leaf

// LiveLeafConfig configures a live leaf peer.
type LiveLeafConfig = live.LeafConfig

// TransportMsg is a framed live-transport message.
type TransportMsg = transport.Msg

// TransportHandler processes inbound live-transport messages.
type TransportHandler = transport.Handler

// TransportEndpoint sends live-transport messages to named peers.
type TransportEndpoint = transport.Endpoint

// Fabric is the in-memory transport for single-process demos and tests.
type Fabric = transport.Fabric

// NewFabric returns an empty in-memory transport fabric.
func NewFabric() *Fabric { return transport.NewFabric() }

// TransportQueuePolicy selects what a bounded queued fabric does with a
// send arriving while its queue is full.
type TransportQueuePolicy = transport.QueuePolicy

// Bounded-queue policies for NewBoundedQueuedFabric.
const (
	// QueueBlock applies backpressure: the sender waits for a free slot.
	QueueBlock = transport.QueueBlock
	// QueueDropNewest drops the arriving message and counts it.
	QueueDropNewest = transport.QueueDropNewest
)

// NewQueuedFabric returns an in-memory fabric with deterministic FIFO
// delivery from a single pump goroutine.
func NewQueuedFabric() *Fabric { return transport.NewQueuedFabric() }

// NewBoundedQueuedFabric is NewQueuedFabric with the pending queue capped
// at capacity messages; policy picks backpressure or loss when full.
func NewBoundedQueuedFabric(capacity int, policy TransportQueuePolicy) *Fabric {
	return transport.NewBoundedQueuedFabric(capacity, policy)
}

// TransportImpairment is a seeded loss/duplication/reordering policy for
// the in-memory fabric (Fabric.SetImpairment) and UDP endpoints; the
// zero value disables everything.
type TransportImpairment = transport.Impairment

// TransportImpairer applies an installed impairment policy and exposes
// its Stats and Flush.
type TransportImpairer = transport.Impairer

// ListenTCP starts a TCP transport endpoint on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, h TransportHandler) (TransportEndpoint, error) {
	return transport.ListenTCP(addr, h)
}

// ListenUDP starts a UDP transport endpoint on addr (e.g. "127.0.0.1:0").
// Datagram semantics: a lost message is never reported to the sender, so
// live participants on UDP rely on timer deadlines and §3.2 parity, not
// transport errors.
func ListenUDP(addr string, h TransportHandler) (TransportEndpoint, error) {
	return transport.ListenUDP(addr, h)
}

// LiveTransport selects how a live participant attaches to the network;
// construct one with WithFabric, WithTCP, WithUDP or WithAttach.
type LiveTransport = live.Transport

// WithFabric attaches a live participant to the in-memory fabric under
// the given endpoint name.
func WithFabric(f *Fabric, name string) LiveTransport { return live.WithFabric(f, name) }

// WithTCP attaches a live participant to its own TCP listener on addr
// (e.g. "127.0.0.1:0").
func WithTCP(addr string) LiveTransport { return live.WithTCP(addr) }

// WithUDP attaches a live participant to its own UDP socket on addr
// (e.g. "127.0.0.1:0").
func WithUDP(addr string) LiveTransport { return live.WithUDP(addr) }

// WithAttach adapts a legacy attach callback (the function receives the
// participant's handler and returns its endpoint) to a LiveTransport.
func WithAttach(attach func(TransportHandler) (TransportEndpoint, error)) LiveTransport {
	return live.WithAttach(attach)
}

// StartLivePeer starts a live contents peer on the given transport.
func StartLivePeer(cfg LivePeerConfig, tr LiveTransport) (*LivePeer, error) {
	return live.NewPeer(cfg, tr)
}

// StartLiveLeaf starts a live leaf peer on the given transport.
func StartLiveLeaf(cfg LiveLeafConfig, tr LiveTransport) (*LiveLeaf, error) {
	return live.NewLeaf(cfg, tr)
}

// The attach-callback constructors NewLivePeer / NewLiveLeaf are gone:
// StartLivePeer / StartLiveLeaf with WithFabric, WithTCP, WithUDP, or
// WithAttach cover every attachment style through one transport
// argument instead of a second constructor shape.

// WriteRoundsSVG renders a Figure 10/11-style chart (rounds + control
// packets vs H) into dir/name.svg.
func WriteRoundsSVG(dir, name, title string, s Series) error {
	return experiment.WriteSVG(dir, name, experiment.RoundsChart(title, s))
}

// WriteRateSVG renders a Figure 12-style chart (receipt rate vs H) into
// dir/name.svg.
func WriteRateSVG(dir, name, title string, dcop, tcop Series) error {
	return experiment.WriteSVG(dir, name, experiment.RateChart(title, dcop, tcop))
}

// LiveCluster is a running live session (peers + leaf) created by
// StartLiveCluster.
type LiveCluster = live.Cluster

// LiveClusterConfig wires a whole live session in one call.
type LiveClusterConfig = live.ClusterConfig

// The LiveTCoP / LiveDCoP aliases are gone: LivePeerConfig.Protocol and
// LiveClusterConfig.Protocol accept the shared TCoP / DCoP constants
// directly.

// StartLiveCluster builds and starts a live session: n contents peers
// plus a leaf over the in-memory fabric or TCP loopback, with the
// content request already sent.
func StartLiveCluster(cfg LiveClusterConfig) (*LiveCluster, error) {
	return live.StartCluster(cfg)
}

// ContentStore is a peer's catalog of contents, keyed by ID.
type ContentStore = content.Store

// NewContentStore returns an empty content catalog.
func NewContentStore() *ContentStore { return content.NewStore() }

// ---- session-oriented live nodes ------------------------------------------

// SessionID identifies one streaming session on a live node.
type SessionID = live.SessionID

// LiveNode hosts a content store on one endpoint and participates in
// many concurrent streaming sessions, serving some as a contents peer
// and consuming others as a leaf.
type LiveNode = live.Node

// LiveNodeConfig configures a session-multiplexing live node.
type LiveNodeConfig = live.NodeConfig

// LiveSessionConfig describes one leaf session a node opens.
type LiveSessionConfig = live.SessionConfig

// LiveLeafSession is a leaf session hosted on a node.
type LiveLeafSession = live.LeafSession

// NewLiveNode creates a session-multiplexing node on the given transport.
func NewLiveNode(cfg LiveNodeConfig, tr LiveTransport) (*LiveNode, error) {
	return live.NewNode(cfg, tr)
}

// LiveNodeCluster is a running node population created by StartLiveNodes.
type LiveNodeCluster = live.NodeCluster

// LiveNodesConfig wires a node population in one call.
type LiveNodesConfig = live.NodesConfig

// StartLiveNodes builds a node population ready to open sessions.
func StartLiveNodes(cfg LiveNodesConfig) (*LiveNodeCluster, error) {
	return live.StartNodes(cfg)
}

// ---- decentralized discovery ----------------------------------------------

// Directory resolves which peers serve a content — the abstraction a
// live node opens sessions through. NewStaticDirectory wraps a
// configured roster; NewDirectoryCatalog joins the gossip-backed
// discovery swarm; LiveNodeConfig.Discover wires the latter into a node
// automatically.
type Directory = disco.Directory

// StaticDirectory is the configured-roster Directory: every lookup
// answers with the full static roster, in its original order.
type StaticDirectory = disco.Static

// NewStaticDirectory wraps a static roster as a Directory.
func NewStaticDirectory(roster []string) *StaticDirectory { return disco.NewStatic(roster) }

// DirectoryRecord is one entry of a discovery directory: a node's
// signed announcement of the contents it serves.
type DirectoryRecord = disco.Record

// DirectoryCatalog is the gossip-backed Directory: it announces this
// node's catalog, accumulates other nodes' signed announcements, and
// expires entries whose owner went silent.
type DirectoryCatalog = disco.Catalog

// DirectoryCatalogConfig parameterizes a DirectoryCatalog.
type DirectoryCatalogConfig = disco.CatalogConfig

// NewDirectoryCatalog starts a gossip-backed directory node.
func NewDirectoryCatalog(cfg DirectoryCatalogConfig) (*DirectoryCatalog, error) {
	return disco.NewCatalog(cfg)
}

// ---- overlay introspection & flight recording -----------------------------

// OverlaySnapshot is a versioned point-in-time view of an overlay:
// per-peer slot assignments, parent/child streaming edges, division
// coverage, and tree-health gauges. Produced by LiveCluster.Snapshot
// and LiveNodeCluster.Snapshot, served on /debug/overlay, rendered to
// Graphviz with its DOT method.
type OverlaySnapshot = overlay.Snapshot

// OverlayNode is one peer's entry in an overlay snapshot.
type OverlayNode = overlay.Node

// OverlayEdge is one parent→child streaming edge in a snapshot.
type OverlayEdge = overlay.Edge

// OverlayHealth summarizes a snapshot's tree health (depth, fanout,
// orphaned leaves, division coverage).
type OverlayHealth = overlay.Health

// FlightRecorder is one peer's bounded in-memory ring of coordination
// events and effects — a crash-forensics flight recorder. A nil
// recorder is the disabled state and costs nothing on the hot path.
type FlightRecorder = flight.Recorder

// FlightSet is a population of per-peer flight recorders sharing one
// capacity, attachable to SimConfig.Flight, LiveClusterConfig.Flight
// and LiveNodesConfig.Flight.
type FlightSet = flight.Set

// FlightEvent is one recorded engine event or effect.
type FlightEvent = flight.Event

// FlightLog labels a flight-event stream for divergence diffing.
type FlightLog = flight.Log

// FlightDivergence names the first event where two flight logs
// disagree: the peer, the per-peer event index, and both sides' events.
type FlightDivergence = flight.Divergence

// FlightDiffOptions tunes FirstFlightDivergence (timer-event handling,
// session filtering).
type FlightDiffOptions = flight.DiffOptions

// NewFlightSet returns a recorder population holding up to perPeerCap
// events per peer (0 picks the 512-event default).
func NewFlightSet(perPeerCap int) *FlightSet { return flight.NewSet(perPeerCap) }

// WriteFlightJSONL writes flight events to w as JSON Lines.
func WriteFlightJSONL(w io.Writer, events []FlightEvent) error {
	return flight.WriteJSONL(w, events)
}

// ReadFlightJSONL reads a JSONL flight log written by WriteFlightJSONL
// or FlightSet.DumpJSONL.
func ReadFlightJSONL(r io.Reader) ([]FlightEvent, error) { return flight.ReadJSONL(r) }

// FirstFlightDivergence aligns two flight logs — e.g. a simulated run
// and its live conformance twin — per (session, peer) and returns the
// first event where they disagree, or nil when the logs agree.
// Timestamps are never compared (one side counts virtual time, the
// other wall time); identity is (peer, direction, type, counterpart,
// round, size).
func FirstFlightDivergence(a, b FlightLog, opt FlightDiffOptions) *FlightDivergence {
	return flight.FirstDivergence(a, b, opt)
}

// SummarizeFlight groups flight events by (session, peer, direction,
// type) with counts and first/last timestamps.
func SummarizeFlight(events []FlightEvent) []flight.Summary { return flight.Summarize(events) }

// FlightSummary is one SummarizeFlight group.
type FlightSummary = flight.Summary
